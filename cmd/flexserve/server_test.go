package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	flex "github.com/flex-eda/flex"
)

// newTestServer builds a server over a small real Service.
func newTestServer(t *testing.T, opts ...flex.ServiceOption) *httptest.Server {
	t.Helper()
	if len(opts) == 0 {
		opts = []flex.ServiceOption{flex.WithWorkers(2), flex.WithCacheBytes(32 << 20)}
	}
	svc := flex.NewService(opts...)
	ts := httptest.NewServer(newServer(svc, nil, 8<<20, 0.05, 8))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts
}

// decodeNDJSON parses a streaming response body: result lines then the
// summary line.
func decodeNDJSON(t *testing.T, body *bufio.Scanner) ([]resultLine, summaryLine) {
	t.Helper()
	var results []resultLine
	var sum summaryLine
	sawDone := false
	for body.Scan() {
		line := strings.TrimSpace(body.Text())
		if line == "" {
			continue
		}
		if sawDone {
			t.Fatalf("line after summary: %s", line)
		}
		var probe map[string]any
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", line, err)
		}
		if _, ok := probe["done"]; ok {
			if err := json.Unmarshal([]byte(line), &sum); err != nil {
				t.Fatal(err)
			}
			sawDone = true
			continue
		}
		var r resultLine
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	if !sawDone {
		t.Fatal("stream ended without a summary line")
	}
	return results, sum
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Fatalf("body %v", body)
	}
}

func TestLegalizeDesignRefs(t *testing.T) {
	ts := newTestServer(t)
	req := `{"jobs":[
		{"design":"fft_a_md2","scale":0.008,"engine":"flex","tag":"a"},
		{"design":"fft_a_md2","scale":0.008,"engine":"mgl","tag":"b"}
	]}`
	resp, err := http.Post(ts.URL+"/v1/legalize", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type %q", ct)
	}
	results, sum := decodeNDJSON(t, bufio.NewScanner(resp.Body))
	if len(results) != 2 || sum.Jobs != 2 || sum.Errors != 0 || !sum.Done {
		t.Fatalf("results %+v summary %+v", results, sum)
	}
	seen := map[int]resultLine{}
	for _, r := range results {
		seen[r.Index] = r
		if r.Error != "" || r.Legal == nil || !*r.Legal {
			t.Fatalf("bad result %+v", r)
		}
		if r.ModeledSeconds <= 0 || r.Movable <= 0 {
			t.Fatalf("missing metrics in %+v", r)
		}
	}
	if seen[0].Engine != "FLEX" || seen[0].Tag != "a" {
		t.Fatalf("job 0 %+v", seen[0])
	}
	if seen[1].Engine != "MGL" || seen[1].Tag != "b" {
		t.Fatalf("job 1 %+v", seen[1])
	}
	if sum.ModeledSeconds <= 0 {
		t.Fatalf("summary %+v", sum)
	}

	// The same design twice: the second lookup must have hit the cache.
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Jobs != 2 || st.Batches != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
}

func TestLegalizeRawFlexplPayload(t *testing.T) {
	layout, err := flex.GenerateCustom(300, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := flex.WriteLayout(&sb, layout); err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/legalize?engine=analytical&tag=raw", "text/plain", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	results, sum := decodeNDJSON(t, bufio.NewScanner(resp.Body))
	if len(results) != 1 || sum.Errors != 0 {
		t.Fatalf("results %+v summary %+v", results, sum)
	}
	if results[0].Tag != "raw" || results[0].Engine != "ISPD'25" {
		t.Fatalf("result %+v", results[0])
	}
}

func TestLegalizeIncludeLayoutRoundTrips(t *testing.T) {
	ts := newTestServer(t)
	req := `{"jobs":[{"design":"fft_a_md2","scale":0.008}],"includeLayout":true}`
	resp, err := http.Post(ts.URL+"/v1/legalize", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20) // layout lines are big
	results, _ := decodeNDJSON(t, sc)
	if len(results) != 1 || results[0].Layout == "" {
		t.Fatalf("no layout echoed: %+v", results)
	}
	l, err := flex.ReadLayout(strings.NewReader(results[0].Layout))
	if err != nil {
		t.Fatalf("echoed layout does not parse: %v", err)
	}
	if got := flex.Check(l, 1); len(got) != 0 {
		t.Fatalf("echoed layout illegal: %v", got)
	}
}

func TestLegalizeMalformedRequests(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name, body, wantSub string
	}{
		{"broken JSON", `{"jobs":`, "invalid JSON"},
		{"no jobs", `{"jobs":[]}`, "no jobs"},
		{"neither design nor layout", `{"jobs":[{"engine":"flex"}]}`, "one of design, layout or base"},
		{"both design and layout", `{"jobs":[{"design":"fft_a_md2","layout":"x"}]}`, "mutually exclusive"},
		{"unknown design", `{"jobs":[{"design":"nope"}]}`, "unknown design"},
		{"unknown engine", `{"jobs":[{"design":"fft_a_md2","engine":"turbo"}]}`, "unknown engine"},
		{"bad layout text", `{"jobs":[{"layout":"not flexpl at all"}]}`, "invalid flexpl"},
		// Scale is mandatory and bounded for design refs: an omitted scale
		// must not silently become the paper-size default.
		{"missing scale", `{"jobs":[{"design":"fft_a_md2"}]}`, "scale must be positive"},
		{"negative scale", `{"jobs":[{"design":"fft_a_md2","scale":-1}]}`, "scale must be positive"},
		{"scale over server limit", `{"jobs":[{"design":"fft_a_md2","scale":1.0}]}`, "exceeds the server's limit"},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/legalize", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		var eb errorBody
		if decErr := json.NewDecoder(resp.Body).Decode(&eb); decErr != nil {
			t.Fatalf("%s: error body: %v", c.name, decErr)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%+v)", c.name, resp.StatusCode, eb)
		}
		if !strings.Contains(eb.Error, c.wantSub) {
			t.Fatalf("%s: error %q does not mention %q", c.name, eb.Error, c.wantSub)
		}
	}
}

func TestLegalizeShardedJob(t *testing.T) {
	ts := newTestServer(t)
	req := `{"jobs":[{"design":"fft_a_md2","scale":0.008,"engine":"flex","shards":2,"halo":2,"tag":"sh"}]}`
	resp, err := http.Post(ts.URL+"/v1/legalize", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	results, sum := decodeNDJSON(t, bufio.NewScanner(resp.Body))
	if len(results) != 1 || sum.Errors != 0 {
		t.Fatalf("results %+v summary %+v", results, sum)
	}
	r := results[0]
	if r.Shards != 2 {
		t.Fatalf("shards = %d, want 2: %+v", r.Shards, r)
	}
	if r.Legal == nil || !*r.Legal || r.Movable <= 0 {
		t.Fatalf("bad sharded result %+v", r)
	}
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ShardedJobs != 1 {
		t.Fatalf("shardedJobs = %d, want 1", st.ShardedJobs)
	}
	if st.RetryAfterSeconds < 1 {
		t.Fatalf("retryAfterSeconds = %d, want >= 1", st.RetryAfterSeconds)
	}
}

// TestShardKnobValidation: shard counts outside [0, max-shards] are 400s,
// on both the JSON and raw-payload paths.
func TestShardKnobValidation(t *testing.T) {
	ts := newTestServer(t) // max-shards 8
	for _, c := range []struct{ name, body, wantSub string }{
		{"negative shards", `{"jobs":[{"design":"fft_a_md2","scale":0.008,"shards":-1}]}`, "shards must be in"},
		{"too many shards", `{"jobs":[{"design":"fft_a_md2","scale":0.008,"shards":9}]}`, "shards must be in"},
		{"negative halo", `{"jobs":[{"design":"fft_a_md2","scale":0.008,"halo":-1}]}`, "halo must be"},
	} {
		resp, err := http.Post(ts.URL+"/v1/legalize", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		var eb errorBody
		if decErr := json.NewDecoder(resp.Body).Decode(&eb); decErr != nil {
			t.Fatal(decErr)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(eb.Error, c.wantSub) {
			t.Fatalf("%s: status %d error %q", c.name, resp.StatusCode, eb.Error)
		}
	}
	layout, err := flex.GenerateCustom(200, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := flex.WriteLayout(&sb, layout); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/legalize?engine=mgl&shards=99", "text/plain", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("raw payload with shards=99: status %d, want 400", resp.StatusCode)
	}
	ok, err := http.Post(ts.URL+"/v1/legalize?engine=mgl&shards=2", "text/plain", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("raw payload with shards=2: status %d", ok.StatusCode)
	}
	results, _ := decodeNDJSON(t, bufio.NewScanner(ok.Body))
	if len(results) != 1 || results[0].Shards != 2 {
		t.Fatalf("raw sharded result %+v", results)
	}
}

func TestLegalizeOverloadReturns429(t *testing.T) {
	// Queue depth 1: a 2-job batch can never be admitted.
	ts := newTestServer(t, flex.WithWorkers(1), flex.WithQueueDepth(1))
	req := `{"jobs":[{"design":"fft_a_md2","scale":0.008},{"design":"fft_a_md2","scale":0.008}]}`
	resp, err := http.Post(ts.URL+"/v1/legalize", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	// Retry-After derives from current queue occupancy: an integer number
	// of seconds, at least 1 even on an idle queue.
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 60 {
		t.Fatalf("Retry-After %q, want an integer in [1, 60]", resp.Header.Get("Retry-After"))
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "overloaded") {
		t.Fatalf("error %q", eb.Error)
	}

	// A fitting request still succeeds, and the rejection is counted.
	ok, err := http.Post(ts.URL+"/v1/legalize", "application/json",
		strings.NewReader(`{"jobs":[{"design":"fft_a_md2","scale":0.008}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("fitting request status %d", ok.StatusCode)
	}
	decodeNDJSON(t, bufio.NewScanner(ok.Body))
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Overloaded != 1 || st.Jobs != 1 {
		t.Fatalf("stats %+v, want 1 overloaded / 1 job", st)
	}
}

func TestLegalizeOversizedBodyReturns413(t *testing.T) {
	svc := flex.NewService(flex.WithWorkers(1))
	ts := httptest.NewServer(newServer(svc, nil, 1024, 0.05, 8)) // 1 KiB body limit
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	body := `{"jobs":[{"layout":"` + strings.Repeat("x", 4096) + `"}]}`
	resp, err := http.Post(ts.URL+"/v1/legalize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "limit") {
		t.Fatalf("error %q does not name the size limit", eb.Error)
	}
}

// TestHealthzDrainingReturns503: drain() must flip the liveness probe to
// 503 "draining" while the listener is still up — a probe during graceful
// shutdown sees draining, not a 200 that turns into connection-refused.
func TestHealthzDrainingReturns503(t *testing.T) {
	svc := flex.NewService(flex.WithWorkers(1))
	app := newServer(svc, nil, 8<<20, 0.05, 8)
	ts := httptest.NewServer(app)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	app.drain()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "draining" {
		t.Fatalf("body %v, want status draining", body)
	}
}

// TestWorkerModeServesFleetProtocol: a worker-mode server mounts the fleet
// surface next to the normal API, and drain() propagates onto it so a
// coordinator's health probe sees 503.
func TestWorkerModeServesFleetProtocol(t *testing.T) {
	svc := flex.NewService(flex.WithWorkers(1), flex.WithCacheBytes(32<<20))
	fw := flex.NewFleetWorker(svc)
	app := newServer(svc, fw, 8<<20, 0.05, 8)
	ts := httptest.NewServer(app)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})

	// The fleet health endpoint and the normal API both answer.
	resp, err := http.Get(ts.URL + "/w/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/w/v1/health status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}

	// A fleet job executes through the service's normal path.
	job := `{"design":"fft_a_md2","scale":0.008,"engine":"flex"}`
	resp, err = http.Post(ts.URL+"/w/v1/job", "application/json", strings.NewReader(job))
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Layout string `json:"layout"`
		Legal  bool   `json:"legal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !res.Legal || res.Layout == "" {
		t.Fatalf("fleet job: status %d result %+v", resp.StatusCode, res)
	}

	// drain() reaches the fleet surface too.
	app.drain()
	for _, path := range []string{"/healthz", "/w/v1/health"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s after drain: status %d, want 503", path, resp.StatusCode)
		}
	}
}

// TestStatsFleetBlock: a coordinator's /v1/stats carries the fleet block —
// per-node liveness and the routing totals — after jobs executed remotely;
// a single-process server omits it.
func TestStatsFleetBlock(t *testing.T) {
	wsvc := flex.NewService(flex.WithWorkers(2), flex.WithCacheBytes(32<<20))
	worker := httptest.NewServer(newServer(wsvc, flex.NewFleetWorker(wsvc), 8<<20, 0.05, 8))
	t.Cleanup(func() {
		worker.Close()
		wsvc.Close()
	})

	ts := newTestServer(t, flex.WithWorkers(2), flex.WithCacheBytes(32<<20),
		flex.WithWorkersList(worker.URL))
	req := `{"jobs":[{"design":"fft_a_md2","scale":0.008,"engine":"flex","shards":2}]}`
	resp, err := http.Post(ts.URL+"/v1/legalize", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	results, sum := decodeNDJSON(t, bufio.NewScanner(resp.Body))
	if len(results) != 1 || sum.Errors != 0 || results[0].Legal == nil || !*results[0].Legal {
		t.Fatalf("results %+v summary %+v", results, sum)
	}

	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Fleet == nil {
		t.Fatal("coordinator stats missing fleet block")
	}
	if st.Fleet.Routed < 2 { // both bands went remote
		t.Fatalf("fleet.routed = %d, want >= 2", st.Fleet.Routed)
	}
	if st.Fleet.RemoteWallMs <= 0 {
		t.Fatalf("fleet.remoteWallMs = %g, want > 0", st.Fleet.RemoteWallMs)
	}
	if len(st.Fleet.Nodes) != 1 || st.Fleet.Nodes[0].Addr != worker.URL ||
		st.Fleet.Nodes[0].State != "alive" || st.Fleet.Nodes[0].Routed < 2 {
		t.Fatalf("fleet nodes %+v", st.Fleet.Nodes)
	}

	// A single-process server's stats omit the block entirely.
	single := newTestServer(t)
	sresp, err := http.Get(single.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var sst statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&sst); err != nil {
		t.Fatal(err)
	}
	if sst.Fleet != nil {
		t.Fatalf("single-process stats carry a fleet block: %+v", sst.Fleet)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/legalize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/legalize status %d, want 405", resp.StatusCode)
	}
}
