package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	flex "github.com/flex-eda/flex"
)

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/legalize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestUnknownJSONFieldRejected is the DisallowUnknownFields satellite: a
// typoed job field gets a 400 naming the offending field instead of a
// silently ignored knob.
func TestUnknownJSONFieldRejected(t *testing.T) {
	ts := newTestServer(t)
	resp := postJSON(t, ts.URL,
		`{"jobs":[{"design":"fft_a_md2","scale":0.01,"prioritee":9}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "prioritee") {
		t.Fatalf("error does not name the offending field: %s", body)
	}
	// Request-level typos are caught too.
	resp = postJSON(t, ts.URL, `{"jobz":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("request-level typo: status %d, want 400", resp.StatusCode)
	}
}

// TestSchedulingFieldsAccepted pins the wire surface: priority, client and
// deadlineMs ride a job to completion, and the result line carries the
// scheduling observations.
func TestSchedulingFieldsAccepted(t *testing.T) {
	ts := newTestServer(t)
	resp := postJSON(t, ts.URL,
		`{"jobs":[{"design":"fft_a_md2","scale":0.01,"priority":7,"client":"acme","deadlineMs":60000,"engine":"flex"}]}`)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	results, sum := decodeNDJSON(t, bufio.NewScanner(resp.Body))
	if len(results) != 1 || sum.Errors != 0 {
		t.Fatalf("results %+v summary %+v", results, sum)
	}
	if results[0].Legal == nil || !*results[0].Legal {
		t.Fatalf("job did not legalize: %+v", results[0])
	}
}

// TestSchedulingFieldValidation pins the 400s: out-of-range priority and
// negative deadlines are rejected with the job index.
func TestSchedulingFieldValidation(t *testing.T) {
	ts := newTestServer(t)
	for _, body := range []string{
		`{"jobs":[{"design":"fft_a_md2","scale":0.01,"priority":101}]}`,
		`{"jobs":[{"design":"fft_a_md2","scale":0.01,"priority":-101}]}`,
		`{"jobs":[{"design":"fft_a_md2","scale":0.01,"deadlineMs":-1}]}`,
	} {
		resp := postJSON(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestExpiredDeadlineSurfacesInResult pins the deadline path end to end
// over HTTP: a 1 ms deadline on a queued job expires and the result line
// reports the deadline error instead of an outcome.
func TestExpiredDeadlineSurfacesInResult(t *testing.T) {
	ts := newTestServer(t, flex.WithWorkers(1), flex.WithCacheBytes(32<<20))
	// Two jobs on one worker: the higher-priority first job occupies it
	// (EDF would otherwise run the deadline job first), so the doomed
	// job's 1 ms deadline expires while it queues.
	resp := postJSON(t, ts.URL,
		`{"jobs":[{"design":"fft_a_md2","scale":0.01,"engine":"flex","priority":5},`+
			`{"design":"fft_a_md2","scale":0.01,"engine":"flex","deadlineMs":1,"tag":"doomed"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	results, sum := decodeNDJSON(t, bufio.NewScanner(resp.Body))
	var doomed *resultLine
	for i := range results {
		if results[i].Tag == "doomed" {
			doomed = &results[i]
		}
	}
	if doomed == nil {
		t.Fatalf("doomed job missing: %+v", results)
	}
	if doomed.Error == "" || !strings.Contains(doomed.Error, "deadline") {
		t.Fatalf("doomed job error = %q, want a deadline error", doomed.Error)
	}
	if sum.Errors != 1 {
		t.Fatalf("summary %+v, want 1 error", sum)
	}
}

// TestPerClient429 pins per-tenant shedding: a client over its admission
// bound gets a 429 naming it, with a Retry-After header, while another
// client's identical request is served.
func TestPerClient429(t *testing.T) {
	ts := newTestServer(t,
		flex.WithWorkers(2), flex.WithCacheBytes(32<<20), flex.WithClientQueueDepth(2))
	resp := postJSON(t, ts.URL,
		`{"jobs":[{"design":"fft_a_md2","scale":0.01,"client":"greedy"},`+
			`{"design":"fft_a_md2","scale":0.01,"client":"greedy"},`+
			`{"design":"fft_a_md2","scale":0.01,"client":"greedy"}]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("per-client 429 missing Retry-After")
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "greedy") {
		t.Fatalf("429 does not name the client: %s", body)
	}
	// A polite client still fits.
	resp = postJSON(t, ts.URL,
		`{"jobs":[{"design":"fft_a_md2","scale":0.01,"client":"polite"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sibling client status %d, want 200", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	// The rejection is visible in stats.
	st, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.ClientOverloaded != 1 || stats.ClientQueueDepth != 2 {
		t.Fatalf("stats %+v, want clientOverloaded=1 depth=2", stats)
	}
}

// TestStatsExposeSchedulerSurface pins the new /v1/stats fields.
func TestStatsExposeSchedulerSurface(t *testing.T) {
	ts := newTestServer(t,
		flex.WithWorkers(2), flex.WithCacheBytes(32<<20),
		flex.WithScheduler(flex.SchedulerPriority),
		flex.WithClientQuota(4),
		flex.WithReconfigCost(time.Millisecond))
	resp := postJSON(t, ts.URL,
		`{"jobs":[{"design":"fft_a_md2","scale":0.01,"engine":"flex","priority":3}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	st, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Scheduler != "priority" || stats.ClientQuota != 4 {
		t.Fatalf("scheduler surface missing: %+v", stats)
	}
	if stats.QueuedByPriority == nil {
		t.Fatal("queuedByPriority missing (must serialize as an object even when empty)")
	}
	if stats.ReconfigMs != 1 {
		t.Fatalf("reconfigMs = %v, want 1", stats.ReconfigMs)
	}
	if stats.Reconfigs < 1 {
		t.Fatalf("FLEX job charged no reconfiguration: %+v", stats)
	}
}

// TestRawPayloadSchedulingParams pins the non-JSON path: priority/client/
// deadlineMs query parameters are parsed and validated.
func TestRawPayloadSchedulingParams(t *testing.T) {
	ts := newTestServer(t)
	layout, err := flex.GenerateCustom(100, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := flex.WriteLayout(&sb, layout); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/legalize?engine=mgl&priority=5&client=acme&deadlineMs=60000",
		"text/plain", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	io.Copy(io.Discard, resp.Body)
	resp2, err := http.Post(ts.URL+"/v1/legalize?priority=9999",
		"text/plain", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range priority: status %d, want 400", resp2.StatusCode)
	}
}
