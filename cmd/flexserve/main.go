// Command flexserve exposes a long-lived flex.Service over HTTP: the
// serving path of the FLEX reproduction, multiplexing many legalization
// requests over one worker pool, one modeled FPGA board pool, and one
// memoizing layout cache.
//
// Usage:
//
//	flexserve [-addr :8080] [-workers N] [-fpgas N]
//	          [-cache-mb 256] [-queue-depth 1024] [-max-body-mb 64]
//	          [-max-scale 0.2] [-max-shards 64] [-auto-shard-mb 0]
//	          [-sched priority|fifo] [-client-quota 0] [-client-queue-depth 0]
//	          [-reconfig-ms 0] [-outcome-cache-mb 0] [-cache-dir DIR]
//	          [-mode single|coordinator|worker] [-peers URL,URL,...]
//	          [-fleet-timeout-ms 120000] [-fleet-inflight 16] [-fleet-retries 0]
//	          [-log-level info] [-trace] [-pprof]
//
// Observability (all off the result path — enabling any of it never
// changes the bytes a request streams back):
//
//   - GET /metrics serves the service's metric registry in Prometheus text
//     exposition format: latency histograms for queue wait, device
//     wait/hold, fleet RPCs and end-to-end job time, plus job/reject/cache
//     counters and queue-depth/draining/build-info gauges.
//   - -trace records a per-job span tree (admit, sched-wait, device-wait,
//     device-hold, per-band legalize, fleet-rpc, stitch, eco-splice); each
//     NDJSON result line then carries a "trace" ID, and on a coordinator
//     the worker-side subtree arrives over the X-Flex-Trace header so a
//     fleet job yields one coherent tree.
//   - -log-level sets the stderr structured-log threshold (debug, info,
//     warn, error). Load shedding (429/503) and drain transitions log at
//     warn with client, queue depth and Retry-After; at debug every job
//     logs a one-line span summary.
//   - -pprof mounts net/http/pprof at /debug/pprof/* (off by default:
//     profiling endpoints are an operator surface, not a tenant one).
//   - GET /v1/buildinfo reports the module version and VCS revision of the
//     running binary; workers report the same identity over fleet health.
//
// See docs/OBSERVABILITY.md for the span model and the metric inventory.
//
// Fleet roles (-mode, default "single"):
//
//   - coordinator: every job — and every band of a sharded job — executes
//     remotely on one of the -peers worker base URLs, routed by consistent
//     hashing on the job's cache key so repeat traffic lands on warm
//     workers. Admission, scheduling, caching, sharding and stitching stay
//     local: the API and the result bytes are identical to -mode single.
//     Failed or draining workers are retried elsewhere with the failure
//     excluded; /v1/stats gains a "fleet" block (per-node liveness and
//     traffic, routed/retried/excluded totals, cumulative remote RTT).
//   - worker: additionally serves the fleet job protocol (POST /w/v1/job,
//     GET /w/v1/health) next to the normal API, for coordinators to call.
//
// API:
//
//	POST /v1/legalize
//	    Body: {"jobs":[{"design":"fft_a_md2","scale":0.02,"engine":"flex"},
//	                   {"layout":"<flexpl text>","engine":"mgl"}],
//	           "failFast":false,"includeLayout":false}
//	    — or a raw flexpl payload (non-JSON Content-Type) with
//	    ?engine=flex&tag=mine&shards=4&halo=2.
//	    Design jobs must carry an explicit scale in (0, -max-scale].
//	    A job may set "shards": K (bounded by -max-shards) to split its
//	    layout into K row bands legalized as independent pool jobs and
//	    stitched into one result line; -auto-shard-mb M shards any job
//	    whose layout footprint exceeds M MiB even when it doesn't ask.
//	    Each band occupies one admission slot.
//	    Jobs may carry scheduling fields: "priority" (higher runs earlier,
//	    in [-100, 100]; the default scheduler ages waiting jobs so low
//	    priorities never starve), "deadlineMs" (relative completion
//	    target; a job still queued when it expires fails fast in its
//	    result line), and "client" (the tenant quotas, fair sharing and
//	    per-client admission key off). Unknown JSON fields are rejected
//	    with a 400 naming the field.
//	    Streams NDJSON: one result line per job in completion order, then
//	    {"done":true,...}. 400 on malformed payloads, 413 on oversized
//	    bodies, 429 when the queue is full (admission control), 503 while
//	    shutting down. The 429 carries Retry-After derived from current
//	    queue occupancy — ceil(queuedJobs/workers) seconds, clamped to
//	    [1, 60]; /v1/stats exposes the same estimate as
//	    retryAfterSeconds next to queuedJobs. With -client-queue-depth, a
//	    single tenant over its own admission bound gets a per-client 429
//	    (other tenants keep submitting) whose Retry-After reflects that
//	    tenant's backlog.
//	    With -outcome-cache-mb or -cache-dir, finished legalizations are
//	    memoized by input-layout content hash: every result line gains a
//	    "layoutHash" a later job may name as its "base", and a job may
//	    carry "edits" (cell moves/inserts/deletes) perturbing its input —
//	    a sharded edit against a cached base re-legalizes only the dirty
//	    row bands and splices the rest from the cached outcome,
//	    byte-identical to the full re-run. -cache-dir persists the cache
//	    as content-addressed files loaded on start, so a restarted server
//	    is warm. /v1/stats gains incremental/fallbacks/outcomeHits.
//	GET /v1/stats    — cumulative service statistics (jobs, cache hit
//	                   rate, device contention, fleet routing) as JSON.
//	GET /healthz     — liveness probe: 200 {"status":"ok"} while serving,
//	                   503 {"status":"draining"} once shutdown begins.
//
// The server drains in-flight batches on SIGINT/SIGTERM before exiting:
// /healthz flips to 503 first (and a worker's fleet surface starts
// answering 503 "draining", which coordinators retry elsewhere), then the
// listener shuts down, then the service closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	flex "github.com/flex-eda/flex"
	"github.com/flex-eda/flex/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent legalization jobs (0 = GOMAXPROCS)")
	fpgas := flag.Int("fpgas", 1, "modeled FPGA boards shared by FLEX jobs (negative = unlimited)")
	cacheMB := flag.Int("cache-mb", 256, "layout cache budget in MiB (0 = off)")
	queueDepth := flag.Int("queue-depth", 1024, "admission bound on queued+running jobs (0 = unbounded)")
	maxBodyMB := flag.Int("max-body-mb", 64, "request body size limit in MiB")
	maxScale := flag.Float64("max-scale", 0.2, "largest generation scale a design job may request")
	maxShards := flag.Int("max-shards", 64, "largest per-job shard count a request may ask for")
	autoShardMB := flag.Int("auto-shard-mb", 0, "auto-shard jobs whose layout footprint exceeds this many MiB (0 = off)")
	schedName := flag.String("sched", "priority", "queue policy for workers and boards (priority, fifo)")
	clientQuota := flag.Int("client-quota", 0, "max concurrently running jobs per client (0 = unlimited)")
	clientQueueDepth := flag.Int("client-queue-depth", 0, "per-client admission bound on queued+running jobs; exceeding it returns a per-client 429 (0 = unbounded)")
	reconfigMS := flag.Int("reconfig-ms", 0, "modeled FPGA reconfiguration delay in ms when consecutive board holders differ (0 = counted, free)")
	outcomeCacheMB := flag.Int("outcome-cache-mb", 0, "outcome cache budget in MiB: memoize legalization results by layout content hash and serve edit jobs incrementally (0 = off unless -cache-dir is set)")
	cacheDir := flag.String("cache-dir", "", "persist the outcome cache as content-addressed files in this directory, loaded on start (enables the outcome cache)")
	mode := flag.String("mode", "single", "fleet role: single, coordinator (execute jobs on -peers workers), or worker (serve fleet jobs at /w/v1/*)")
	peers := flag.String("peers", "", "comma-separated worker base URLs, e.g. http://10.0.0.2:8080,http://10.0.0.3:8080 (coordinator mode)")
	fleetTimeoutMS := flag.Int("fleet-timeout-ms", 120000, "one remote job attempt's end-to-end timeout in ms (coordinator mode)")
	fleetInflight := flag.Int("fleet-inflight", 16, "concurrently outstanding remote jobs per worker (coordinator mode)")
	fleetRetries := flag.Int("fleet-retries", 0, "extra attempts after a retryable remote failure, each excluding the failed nodes (0 = every other worker once)")
	logLevel := flag.String("log-level", "info", "structured-log threshold on stderr (debug, info, warn, error)")
	trace := flag.Bool("trace", false, "record per-job trace spans; result lines gain a \"trace\" ID (telemetry only, result bytes unchanged)")
	pprofOn := flag.Bool("pprof", false, "mount profiling endpoints at /debug/pprof/*")
	flag.Parse()

	scheduler, err := flex.ParseScheduler(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "flexserve: invalid -log-level %q (want debug, info, warn, or error)\n", *logLevel)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	reg := obs.NewRegistry()
	opts := []flex.ServiceOption{
		flex.WithMetrics(reg),
		flex.WithTracing(*trace),
		flex.WithLogger(logger),
		flex.WithWorkers(*workers),
		flex.WithFPGAs(*fpgas),
		flex.WithCacheBytes(int64(*cacheMB) << 20),
		flex.WithQueueDepth(*queueDepth),
		flex.WithAutoShardBytes(int64(*autoShardMB) << 20),
		flex.WithScheduler(scheduler),
		flex.WithClientQuota(*clientQuota),
		flex.WithClientQueueDepth(*clientQueueDepth),
		flex.WithReconfigCost(time.Duration(*reconfigMS) * time.Millisecond),
		flex.WithOutcomeCacheBytes(int64(*outcomeCacheMB) << 20),
		flex.WithCacheDir(*cacheDir),
	}
	var workerURLs []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			workerURLs = append(workerURLs, p)
		}
	}
	switch *mode {
	case "single", "worker":
		if len(workerURLs) > 0 {
			fmt.Fprintln(os.Stderr, "flexserve: -peers requires -mode coordinator")
			os.Exit(2)
		}
	case "coordinator":
		if len(workerURLs) == 0 {
			fmt.Fprintln(os.Stderr, "flexserve: -mode coordinator requires -peers")
			os.Exit(2)
		}
		opts = append(opts,
			flex.WithWorkersList(workerURLs...),
			flex.WithFleetTimeout(time.Duration(*fleetTimeoutMS)*time.Millisecond),
			flex.WithFleetInflight(*fleetInflight),
			flex.WithFleetRetries(*fleetRetries),
		)
	default:
		fmt.Fprintf(os.Stderr, "flexserve: unknown -mode %q (want single, coordinator, or worker)\n", *mode)
		os.Exit(2)
	}
	svc := flex.NewService(opts...)
	var fw *flex.FleetWorker
	if *mode == "worker" {
		fw = flex.NewFleetWorker(svc)
		fw.SetLogger(logger)
	}
	app := newServerWith(svc, fw, int64(*maxBodyMB)<<20, *maxScale, *maxShards, obsConfig{
		metrics: reg,
		log:     logger,
		trace:   *trace,
		pprof:   *pprofOn,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           app,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "flexserve: listening on %s (mode=%s workers=%d fpgas=%d cache=%dMiB queue=%d sched=%s client-quota=%d client-queue=%d reconfig=%dms peers=%d)\n",
		*addr, *mode, svc.Stats().Workers, *fpgas, *cacheMB, *queueDepth,
		scheduler, *clientQuota, *clientQueueDepth, *reconfigMS, len(workerURLs))

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "flexserve: shutting down")
	// Flip /healthz (and a worker's fleet surface) to 503 before the
	// listener closes, so probes see "draining" rather than a vanished
	// endpoint while in-flight streams finish.
	app.drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
	}
	if err := svc.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}
