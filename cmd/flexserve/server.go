package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	flex "github.com/flex-eda/flex"
	"github.com/flex-eda/flex/internal/obs"
)

// jobRequest is one legalization job in a POST /v1/legalize body. Exactly
// one of Design (a built-in benchmark reference, generated server-side at
// Scale) or Layout (an inline flexpl payload) must be set.
type jobRequest struct {
	Design  string  `json:"design,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
	Layout  string  `json:"layout,omitempty"`
	Engine  string  `json:"engine,omitempty"` // default "flex"
	Threads int     `json:"threads,omitempty"`
	Tag     string  `json:"tag,omitempty"`
	// Shards splits the job's layout into that many horizontal row bands
	// legalized as independent pool jobs and stitched into one result
	// (bounded by the server's -max-shards; each band occupies one queue
	// slot). 0 = unsharded, negative rejected.
	Shards int `json:"shards,omitempty"`
	// Halo is the sharding seam window in rows (0 = library default).
	Halo int `json:"halo,omitempty"`
	// Priority orders the job against everything else queued on the
	// service (higher runs earlier; bounded to [-100, 100]). The default
	// scheduler ages waiting jobs, so low priorities are delayed, never
	// starved.
	Priority int `json:"priority,omitempty"`
	// DeadlineMs is a relative completion target in milliseconds from
	// request arrival; a job still queued when it expires fails fast in
	// its result line instead of running. 0 = no deadline.
	DeadlineMs int64 `json:"deadlineMs,omitempty"`
	// Client is the submitting tenant: per-client quotas, fair sharing,
	// and the per-client admission bound (429) key off it. Empty is the
	// shared anonymous client.
	Client string `json:"client,omitempty"`
	// Base names the job's input layout by content hash — the layoutHash a
	// previous result line reported. It requires the server's outcome
	// cache (-outcome-cache-mb / -cache-dir) and is mutually exclusive
	// with design and layout; a hash the server has never legalized fails
	// the job in its result line.
	Base string `json:"base,omitempty"`
	// Edits perturbs the job's input (base, layout, or generated design)
	// before legalization: cell moves, inserts, deletes. On a sharded job
	// against a cached base, only the dirty row bands re-legalize; the
	// rest splice from the cached outcome, byte-identical to a full run.
	Edits []flex.Edit `json:"edits,omitempty"`
}

// legalizeRequest is the POST /v1/legalize body.
type legalizeRequest struct {
	Jobs []jobRequest `json:"jobs"`
	// FailFast cancels the remaining jobs after the first error.
	FailFast bool `json:"failFast,omitempty"`
	// IncludeLayout echoes each successful job's legalized layout as
	// flexpl text in its result line (large!).
	IncludeLayout bool `json:"includeLayout,omitempty"`
}

// resultLine is one NDJSON line of the streaming response: a job result in
// completion order, then one final summary line with "done": true.
type resultLine struct {
	Index          int     `json:"index"`
	Tag            string  `json:"tag,omitempty"`
	Error          string  `json:"error,omitempty"`
	Skipped        bool    `json:"skipped,omitempty"`
	Engine         string  `json:"engine,omitempty"`
	Legal          *bool   `json:"legal,omitempty"`
	Violations     int     `json:"violations,omitempty"`
	Movable        int     `json:"movable,omitempty"`
	AveDis         float64 `json:"aveDis,omitempty"`
	MaxDis         float64 `json:"maxDis,omitempty"`
	ModeledSeconds float64 `json:"modeledSeconds,omitempty"`
	WallMs         float64 `json:"wallMs,omitempty"`
	DeviceWaitMs   float64 `json:"deviceWaitMs,omitempty"`
	DeviceHoldMs   float64 `json:"deviceHoldMs,omitempty"`
	// Shards is the effective band count of a sharded job (the plan may
	// clamp the requested count to what the die holds); 0 for unsharded.
	Shards int `json:"shards,omitempty"`
	// SchedWaitMs is the time the job queued for a worker under the
	// service's scheduler; Reconfigs counts modeled board
	// reprogrammings its FPGA acquisitions incurred.
	SchedWaitMs float64 `json:"schedWaitMs,omitempty"`
	Reconfigs   int     `json:"reconfigs,omitempty"`
	Layout      string  `json:"layout,omitempty"`
	// LayoutHash is the content hash of the job's input layout — the
	// handle a later request's "base" field may reference. Present only on
	// servers with an outcome cache.
	LayoutHash string `json:"layoutHash,omitempty"`
	// Trace is the job's 16-hex trace ID, present only when the server runs
	// with -trace: the same ID the job's spans — local and on fleet workers
	// — group under, and the handle for correlating this row with worker
	// logs. Pure telemetry: everything else on the line is byte-identical
	// with tracing off.
	Trace string `json:"trace,omitempty"`
}

// summaryLine closes every NDJSON stream.
type summaryLine struct {
	Done           bool    `json:"done"`
	Jobs           int     `json:"jobs"`
	Errors         int     `json:"errors"`
	Skipped        int     `json:"skipped"`
	ModeledSeconds float64 `json:"modeledSeconds"`
	WallMs         float64 `json:"wallMs"`
}

// errorBody is the JSON error envelope of non-streaming failures.
type errorBody struct {
	Error string `json:"error"`
}

// statsResponse mirrors flex.ServiceStats with durations in milliseconds,
// so curl consumers aren't handed nanosecond integers.
type statsResponse struct {
	Batches    int64 `json:"batches"`
	Jobs       int64 `json:"jobs"`
	Errors     int64 `json:"errors"`
	Skipped    int64 `json:"skipped"`
	Overloaded int64 `json:"overloaded"`
	// ShardedJobs counts jobs that took the row-band shard path.
	ShardedJobs int64 `json:"shardedJobs"`
	Workers     int   `json:"workers"`
	FPGAs       int   `json:"fpgas"` // 0 = unlimited
	QueueDepth  int   `json:"queueDepth"`
	// QueuedJobs is the current queue occupancy (admitted and not yet
	// delivered, with each band of a sharded job counted separately).
	// RetryAfterSeconds is the 429 Retry-After a request rejected right
	// now would carry — ceil(queuedJobs / workers) seconds, clamped to
	// [1, 60] — so clients can see the congestion estimate before
	// tripping it.
	QueuedJobs        int `json:"queuedJobs"`
	RetryAfterSeconds int `json:"retryAfterSeconds"`
	// Scheduler names the active queue policy; queuedByPriority buckets
	// the jobs currently waiting for a worker by priority level (JSON
	// object keyed by the decimal level), and queuedByClient/
	// runningByClient give the per-tenant picture the quotas act on.
	Scheduler        string         `json:"scheduler"`
	QueuedByPriority map[string]int `json:"queuedByPriority"`
	QueuedByClient   map[string]int `json:"queuedByClient"`
	RunningByClient  map[string]int `json:"runningByClient"`
	// ClientQuota/ClientQueueDepth echo the per-client bounds (0 =
	// unlimited); clientOverloaded counts submissions a per-client bound
	// rejected with 429.
	ClientQuota      int   `json:"clientQuota"`
	ClientQueueDepth int   `json:"clientQueueDepth"`
	ClientOverloaded int64 `json:"clientOverloaded"`
	// ReconfigMs is the modeled board-programming delay per configuration
	// swap; reconfigs/reconfigTimeMs total the swaps charged so far.
	ReconfigMs      float64 `json:"reconfigMs"`
	Reconfigs       int     `json:"reconfigs"`
	ReconfigTimeMs  float64 `json:"reconfigTimeMs"`
	CacheHits       int64   `json:"cacheHits"`
	CacheMisses     int64   `json:"cacheMisses"`
	CacheHitRate    float64 `json:"cacheHitRate"`
	CacheEvictions  int64   `json:"cacheEvictions"`
	CacheEntries    int     `json:"cacheEntries"`
	CacheBytes      int64   `json:"cacheBytes"`
	CacheMaxBytes   int64   `json:"cacheMaxBytes"`
	DeviceWaitMs    float64 `json:"deviceWaitMs"`
	DeviceHoldMs    float64 `json:"deviceHoldMs"`
	DeviceAcquires  int     `json:"deviceAcquires"`
	DeviceContended int     `json:"deviceContended"`
	// Outcome-cache accounting (zero unless -outcome-cache-mb or
	// -cache-dir is set): incremental counts edit jobs that spliced cached
	// clean bands; fallbacks edit jobs that ran in full; outcomeHits jobs
	// served wholly or partly from a cached outcome; outcomeDiskHits
	// lookups that re-warmed from -cache-dir files; outcomeLoaded entries
	// restored at start; outcomeErrors corrupt files skipped.
	Incremental     int64 `json:"incremental"`
	Fallbacks       int64 `json:"fallbacks"`
	OutcomeHits     int64 `json:"outcomeHits"`
	OutcomeMisses   int64 `json:"outcomeMisses"`
	OutcomeEntries  int   `json:"outcomeEntries"`
	OutcomeBytes    int64 `json:"outcomeBytes"`
	OutcomeDiskHits int64 `json:"outcomeDiskHits"`
	OutcomeLoaded   int64 `json:"outcomeLoaded"`
	OutcomeErrors   int64 `json:"outcomeErrors"`
	// Fleet is the coordinator's routing snapshot: present only when the
	// server was started with -mode coordinator.
	Fleet *fleetStatsResponse `json:"fleet,omitempty"`
}

// fleetStatsResponse mirrors flex.FleetStats for /v1/stats consumers: one
// row per configured worker plus fleet-wide routing totals.
// remoteWallMs is cumulative band round-trip wall time — telemetry only,
// never part of any modeled result.
type fleetStatsResponse struct {
	Nodes        []fleetNodeResponse `json:"nodes"`
	Routed       int64               `json:"routed"`
	Retried      int64               `json:"retried"`
	Excluded     int64               `json:"excluded"`
	RemoteWallMs float64             `json:"remoteWallMs"`
}

// fleetNodeResponse is one worker's liveness and traffic as the router
// last saw it (state: alive, draining, or dead).
type fleetNodeResponse struct {
	Addr     string `json:"addr"`
	State    string `json:"state"`
	Routed   int64  `json:"routed"`
	Failed   int64  `json:"failed"`
	Inflight int    `json:"inflight"`
}

// server is the HTTP front end over one long-lived flex.Service.
type server struct {
	svc       *flex.Service
	fleet     *flex.FleetWorker // non-nil only in -mode worker
	maxBody   int64
	maxScale  float64
	maxShards int
	workers   int             // the service's fixed pool size
	knownSet  map[string]bool // valid design names, for up-front 400s
	draining  atomic.Bool
	mux       *http.ServeMux

	// Observability (see obsConfig): metrics is nil when /metrics is not
	// served; log is never nil. All telemetry — request IDs, reject
	// counters and warn lines never influence response bytes.
	metrics      *obs.Registry
	log          *slog.Logger
	trace        bool
	reqSeq       atomic.Int64
	rejectQueue  obs.Counter // flex_serve_rejects_total{reason="queue_full"}
	rejectClient obs.Counter // flex_serve_rejects_total{reason="client_queue_full"}
	rejectDrain  obs.Counter // flex_serve_rejects_total{reason="draining"}
}

// obsConfig is the server's observability wiring. The zero value —
// the test default and the library-equivalent of running without the
// observability flags — serves no /metrics, logs through slog.Default,
// attaches no trace IDs and hides pprof.
type obsConfig struct {
	// metrics, when non-nil, is exposed as Prometheus text at GET /metrics
	// (the same registry the service's WithMetrics feeds).
	metrics *obs.Registry
	// log receives the server's structured request logging (rejections at
	// warn, per-job span summaries at debug). nil = slog.Default().
	log *slog.Logger
	// trace stamps each NDJSON result row with its job's trace ID.
	trace bool
	// pprof mounts the /debug/pprof/* profiling endpoints (flag-gated:
	// profiling handlers on a public port are an operator's opt-in).
	pprof bool
}

// newServer routes the serving API over svc. maxBody bounds request bodies
// in bytes (<= 0 = 64 MiB); maxScale bounds the generation scale a design
// job may request (<= 0 = 0.2) — admission control against a stray
// paper-size generation monopolizing a worker. maxShards bounds a job's
// requested band count (<= 0 = 64): each band occupies one queue slot, so
// the bound keeps one request from amplifying itself past the admission
// control. A non-nil fw mounts the fleet worker protocol (/w/v1/*) next
// to the normal API — the -mode worker surface.
func newServer(svc *flex.Service, fw *flex.FleetWorker, maxBody int64, maxScale float64, maxShards int) *server {
	return newServerWith(svc, fw, maxBody, maxScale, maxShards, obsConfig{})
}

// newServerWith is newServer plus the observability wiring: the /metrics
// and /v1/buildinfo endpoints, flag-gated pprof, structured logging, and
// per-row trace IDs.
func newServerWith(svc *flex.Service, fw *flex.FleetWorker, maxBody int64, maxScale float64, maxShards int, oc obsConfig) *server {
	if maxBody <= 0 {
		maxBody = 64 << 20
	}
	if maxScale <= 0 {
		maxScale = 0.2
	}
	if maxShards <= 0 {
		maxShards = 64
	}
	log := oc.log
	if log == nil {
		log = slog.Default()
	}
	s := &server{
		svc: svc, fleet: fw,
		maxBody: maxBody, maxScale: maxScale, maxShards: maxShards,
		workers:  svc.Stats().Workers,
		knownSet: map[string]bool{},
		metrics:  oc.metrics,
		log:      log,
		trace:    oc.trace,
	}
	for _, d := range flex.Designs() {
		s.knownSet[d] = true
	}
	// Server-side metric families (all nil-registry-safe): load-shedding
	// counters by reason, the draining flag as a gauge, and the build
	// identity as a constant info gauge.
	s.rejectQueue = oc.metrics.Counter("flex_serve_rejects_total",
		"Requests shed at admission, by reason.", obs.Label{Key: "reason", Value: "queue_full"})
	s.rejectClient = oc.metrics.Counter("flex_serve_rejects_total",
		"Requests shed at admission, by reason.", obs.Label{Key: "reason", Value: "client_queue_full"})
	s.rejectDrain = oc.metrics.Counter("flex_serve_rejects_total",
		"Requests shed at admission, by reason.", obs.Label{Key: "reason", Value: "draining"})
	oc.metrics.GaugeFunc("flex_serve_draining_state",
		"1 once graceful shutdown has begun, 0 while serving.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	build := obs.Build()
	oc.metrics.Gauge("flex_serve_build_info",
		"Build identity as constant labels; the value is always 1.",
		obs.Label{Key: "version", Value: build.Version},
		obs.Label{Key: "revision", Value: build.Revision}).Set(1)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/legalize", s.handleLegalize)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/buildinfo", s.handleBuildInfo)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if oc.metrics != nil {
		s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	if oc.pprof {
		// pprof.Index dispatches /debug/pprof/{heap,goroutine,...} itself;
		// the named handlers cover the non-lookup endpoints.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if fw != nil {
		// The fleet mux's own patterns carry the /w/v1 prefix, so no
		// StripPrefix: this mount only scopes the subtree.
		s.mux.Handle("/w/v1/", fw.Handler())
	}
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// drain marks the process as shutting down before the listener stops
// accepting: /healthz flips to 503 so load balancers and fleet
// coordinators stop steering new traffic here while in-flight streams
// finish, and a worker's fleet surface starts bouncing jobs with the
// draining code coordinators retry elsewhere.
func (s *server) drain() {
	if !s.draining.Swap(true) {
		s.log.Warn("server draining: /healthz now answers 503 while in-flight streams finish")
	}
	if s.fleet != nil {
		s.fleet.Drain()
	}
}

func writeJSONError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...)})
}

// parseJobs validates the request body into batch jobs, mapping every
// malformed input to a descriptive client error.
func (s *server) parseJobs(r *http.Request) ([]flex.BatchJob, legalizeRequest, error) {
	var req legalizeRequest
	ct := r.Header.Get("Content-Type")
	if strings.Contains(ct, "json") {
		// Unknown fields are typos until proven otherwise: a client
		// writing "prioritee" must get a 400 naming the field, not a
		// silently deprioritized job.
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, req, fmt.Errorf("invalid JSON body: %w", err)
		}
	} else {
		// A raw flexpl payload: one job; engine/tag/shards/halo/priority/
		// client/deadlineMs come from query params.
		l, err := flex.ReadLayout(r.Body)
		if err != nil {
			return nil, req, fmt.Errorf("invalid flexpl payload: %w", err)
		}
		e, err := parseEngineDefault(r.URL.Query().Get("engine"))
		if err != nil {
			return nil, req, err
		}
		shards, err := s.parseShards(r.URL.Query().Get("shards"))
		if err != nil {
			return nil, req, err
		}
		halo, err := parseHalo(r.URL.Query().Get("halo"))
		if err != nil {
			return nil, req, err
		}
		priority, err := parsePriority(r.URL.Query().Get("priority"))
		if err != nil {
			return nil, req, err
		}
		deadline, err := parseDeadlineMs(r.URL.Query().Get("deadlineMs"))
		if err != nil {
			return nil, req, err
		}
		return []flex.BatchJob{{
			Layout: l, Engine: e, Tag: r.URL.Query().Get("tag"),
			Shards: shards, ShardHalo: halo,
			Priority: priority, Deadline: deadline,
			Client: r.URL.Query().Get("client"),
		}}, req, nil
	}
	if len(req.Jobs) == 0 {
		return nil, req, errors.New("no jobs in request")
	}
	jobs := make([]flex.BatchJob, len(req.Jobs))
	for i, jr := range req.Jobs {
		e, err := parseEngineDefault(jr.Engine)
		if err != nil {
			return nil, req, fmt.Errorf("job %d: %w", i, err)
		}
		if jr.Shards < 0 || jr.Shards > s.maxShards {
			return nil, req, fmt.Errorf("job %d: shards must be in [0, %d], got %d", i, s.maxShards, jr.Shards)
		}
		if jr.Halo < 0 {
			return nil, req, fmt.Errorf("job %d: halo must be >= 0, got %d", i, jr.Halo)
		}
		if jr.Priority < -maxPriority || jr.Priority > maxPriority {
			return nil, req, fmt.Errorf("job %d: priority must be in [%d, %d], got %d",
				i, -maxPriority, maxPriority, jr.Priority)
		}
		if jr.DeadlineMs < 0 {
			return nil, req, fmt.Errorf("job %d: deadlineMs must be >= 0, got %d", i, jr.DeadlineMs)
		}
		j := flex.BatchJob{
			Engine:    e,
			Options:   flex.Options{Threads: jr.Threads},
			Tag:       jr.Tag,
			Scale:     jr.Scale,
			Shards:    jr.Shards,
			ShardHalo: jr.Halo,
			Priority:  jr.Priority,
			Client:    jr.Client,
		}
		if jr.DeadlineMs > 0 {
			// Relative on the wire, absolute in the scheduler: the clock
			// starts at request arrival.
			//flexvet:walltime deadlineMs is wall-relative by API contract; it gates scheduling, never result bytes
			j.Deadline = time.Now().Add(time.Duration(jr.DeadlineMs) * time.Millisecond)
		}
		for k, e := range jr.Edits {
			switch e.Op {
			case flex.EditMove, flex.EditInsert, flex.EditDelete:
			default:
				return nil, req, fmt.Errorf("job %d: edit %d: unknown op %q (want move, insert, delete)", i, k, e.Op)
			}
			if e.Cell == "" {
				return nil, req, fmt.Errorf("job %d: edit %d: cell name is required", i, k)
			}
		}
		j.Edits = jr.Edits
		sources := 0
		for _, set := range []bool{jr.Layout != "", jr.Design != "", jr.Base != ""} {
			if set {
				sources++
			}
		}
		if sources > 1 {
			return nil, req, fmt.Errorf("job %d: design, layout and base are mutually exclusive", i)
		}
		switch {
		case jr.Layout != "":
			l, err := flex.ReadLayout(strings.NewReader(jr.Layout))
			if err != nil {
				return nil, req, fmt.Errorf("job %d: invalid flexpl layout: %w", i, err)
			}
			j.Layout = l
		case jr.Base != "":
			j.BaseHash = jr.Base
		case jr.Design != "":
			if !s.knownSet[jr.Design] {
				return nil, req, fmt.Errorf("job %d: unknown design %q", i, jr.Design)
			}
			// Scale is mandatory and bounded for design refs: an omitted
			// scale must not silently default to the paper-size 1.0 that
			// the library's BatchJob convention would apply.
			if jr.Scale <= 0 {
				return nil, req, fmt.Errorf("job %d: scale must be positive (0 < scale <= %g)", i, s.maxScale)
			}
			if jr.Scale > s.maxScale {
				return nil, req, fmt.Errorf("job %d: scale %g exceeds the server's limit %g", i, jr.Scale, s.maxScale)
			}
			j.Design = jr.Design
		default:
			return nil, req, fmt.Errorf("job %d: one of design, layout or base is required", i)
		}
		jobs[i] = j
	}
	return jobs, req, nil
}

// parseEngineDefault maps an optional engine name ("" = flex).
func parseEngineDefault(name string) (flex.Engine, error) {
	if name == "" {
		return flex.EngineFLEX, nil
	}
	return flex.ParseEngine(name)
}

// parseShards maps an optional shards query parameter ("" = unsharded),
// applying the server's band-count bound.
func (s *server) parseShards(v string) (int, error) {
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 || n > s.maxShards {
		return 0, fmt.Errorf("shards must be an integer in [0, %d], got %q", s.maxShards, v)
	}
	return n, nil
}

// parseHalo maps an optional halo query parameter ("" = library default).
func parseHalo(v string) (int, error) {
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("halo must be a non-negative integer, got %q", v)
	}
	return n, nil
}

// maxPriority bounds the priority a request may claim, so no client can
// out-age every other tenant with an astronomic level.
const maxPriority = 100

// parsePriority maps an optional priority query parameter ("" = 0).
func parsePriority(v string) (int, error) {
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < -maxPriority || n > maxPriority {
		return 0, fmt.Errorf("priority must be an integer in [%d, %d], got %q", -maxPriority, maxPriority, v)
	}
	return n, nil
}

// parseDeadlineMs maps an optional relative deadline query parameter
// ("" or "0" = none) to the absolute deadline the scheduler uses.
func parseDeadlineMs(v string) (time.Time, error) {
	if v == "" {
		return time.Time{}, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return time.Time{}, fmt.Errorf("deadlineMs must be a non-negative integer, got %q", v)
	}
	if n == 0 {
		return time.Time{}, nil
	}
	//flexvet:walltime deadlineMs is wall-relative by API contract; it gates scheduling, never result bytes
	return time.Now().Add(time.Duration(n) * time.Millisecond), nil
}

// clientRetryAfterSeconds is the per-client congestion estimate behind a
// per-client 429: the rejected client's own admitted backlog over the
// worker pool, clamped like the global estimate. It is honest in the sense
// that it derives from that client's actual queue occupancy at rejection
// time, not a fixed pause.
func (s *server) clientRetryAfterSeconds(client string) int {
	secs := 1
	if s.workers > 0 {
		secs = (s.svc.ClientQueued(client) + s.workers - 1) / s.workers
	}
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// retryAfterSeconds derives the 429 Retry-After value from current queue
// occupancy: with Q jobs admitted (queued + running, each band of a sharded
// job counted separately) over W workers, a client retrying after ~Q/W
// seconds finds capacity if jobs average about a second — the paper-suite
// ballpark at serving scales. Clamped to [1, 60] so the header is always a
// sane positive delay; it is a congestion hint, not a reservation.
func retryAfterSeconds(st flex.ServiceStats) int {
	secs := 1
	if st.Workers > 0 {
		secs = (st.QueuedJobs + st.Workers - 1) / st.Workers
	}
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// handleLegalize admits the batch onto the service and streams one NDJSON
// result line per job in completion order, then a summary line. Admission
// failures map to 429 (overloaded) / 503 (closed); malformed payloads to
// 400. Per-job failures after admission ride in their result lines — the
// stream already committed to 200 by then.
func (s *server) handleLegalize(w http.ResponseWriter, r *http.Request) {
	rid := s.reqSeq.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	jobs, req, err := s.parseJobs(r)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSONError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte limit", tooLarge.Limit)
			return
		}
		writeJSONError(w, http.StatusBadRequest, "%v", err)
		return
	}
	start := time.Now() //flexvet:walltime request wall for the NDJSON summary's wallMs telemetry field
	ch, err := s.svc.Stream(r.Context(), jobs, flex.SubmitOptions{FailFast: req.FailFast})
	var clientErr *flex.ClientOverloadedError
	switch {
	case errors.As(err, &clientErr):
		// Per-client shedding: this tenant is over its admission bound
		// while others keep submitting. Retry-After reflects the tenant's
		// own backlog.
		retryAfter := s.clientRetryAfterSeconds(clientErr.Client)
		s.rejectClient.Inc()
		s.log.Warn("request rejected with 429: per-client queue full",
			"req", rid, "remote", r.RemoteAddr, "client", clientErr.Client,
			"clientQueued", s.svc.ClientQueued(clientErr.Client), "retryAfterSeconds", retryAfter)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		writeJSONError(w, http.StatusTooManyRequests,
			"client %q overloaded: per-client queue full", clientErr.Client)
		return
	case errors.Is(err, flex.ErrOverloaded):
		// Retry-After scales with how deep the queue currently is — see
		// retryAfterSeconds for the estimate's meaning.
		st := s.svc.Stats()
		retryAfter := retryAfterSeconds(st)
		s.rejectQueue.Inc()
		s.log.Warn("request rejected with 429: queue full",
			"req", rid, "remote", r.RemoteAddr, "jobs", len(jobs),
			"queueDepth", st.QueuedJobs, "retryAfterSeconds", retryAfter)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		writeJSONError(w, http.StatusTooManyRequests, "service overloaded: queue full")
		return
	case errors.Is(err, flex.ErrServiceClosed):
		s.rejectDrain.Inc()
		s.log.Warn("request rejected with 503: service shutting down",
			"req", rid, "remote", r.RemoteAddr, "jobs", len(jobs))
		writeJSONError(w, http.StatusServiceUnavailable, "service shutting down")
		return
	case err != nil:
		s.log.Warn("request failed with 500", "req", rid, "remote", r.RemoteAddr, "err", err)
		writeJSONError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var sum summaryLine
	for res := range ch {
		sum.Jobs++
		line := resultLine{Index: res.Index, Tag: res.Tag, Trace: res.TraceID}
		if s.log.Enabled(r.Context(), slog.LevelDebug) {
			s.log.Debug("job result",
				"req", rid, "index", res.Index, "tag", res.Tag,
				"trace", res.TraceID, "err", res.Err, "spans", obs.Summary(res.Spans))
		}
		switch {
		case flex.IsBatchSkipped(res.Err):
			sum.Skipped++
			line.Skipped = true
			line.Error = res.Err.Error()
		case res.Err != nil:
			sum.Errors++
			line.Error = res.Err.Error()
		default:
			o := res.Outcome
			legal := o.Legal
			line.Engine = o.Engine.String()
			line.Legal = &legal
			line.Violations = len(o.Violations)
			line.Movable = o.Metrics.Movable
			line.AveDis = o.Metrics.AveDis
			line.MaxDis = o.Metrics.MaxDis
			line.ModeledSeconds = o.ModeledSeconds
			line.WallMs = ms(res.Wall)
			line.SchedWaitMs = ms(res.SchedWait)
			line.DeviceWaitMs = ms(res.DeviceWait)
			line.DeviceHoldMs = ms(res.DeviceHold)
			line.Reconfigs = res.DeviceReconfigs
			line.Shards = len(res.Shards)
			line.LayoutHash = o.InputHash
			sum.ModeledSeconds += o.ModeledSeconds
			if req.IncludeLayout {
				var sb strings.Builder
				if err := flex.WriteLayout(&sb, o.Layout); err == nil {
					line.Layout = sb.String()
				}
			}
		}
		if err := enc.Encode(line); err != nil {
			// Client went away: drain the channel (the service needs its
			// queue slots back) and stop writing.
			for range ch {
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	sum.Done = true
	//flexvet:walltime wallMs is service telemetry on the summary line; layouts and BENCH files never carry it
	sum.WallMs = ms(time.Since(start))
	enc.Encode(sum)
}

// handleMetrics serves the registry in Prometheus text exposition format.
// Only mounted when the server was built with a registry, so s.metrics is
// non-nil here.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

// handleBuildInfo reports the binary's module version and VCS identity so
// operators can tell which build answered, matching the identity workers
// report over the fleet Health RPC.
func (s *server) handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(obs.Build())
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.svc.Stats()
	w.Header().Set("Content-Type", "application/json")
	byPriority := make(map[string]int, len(st.QueuedByPriority))
	for p, n := range st.QueuedByPriority {
		byPriority[strconv.Itoa(p)] = n
	}
	resp := statsResponse{
		Batches: st.Batches, Jobs: st.Jobs, Errors: st.Errors,
		Skipped: st.Skipped, Overloaded: st.Overloaded,
		ShardedJobs: st.ShardedJobs,
		Workers:     st.Workers, FPGAs: st.FPGAs, QueueDepth: st.QueueDepth,
		QueuedJobs:        st.QueuedJobs,
		RetryAfterSeconds: retryAfterSeconds(st),
		Scheduler:         st.Scheduler,
		QueuedByPriority:  byPriority,
		QueuedByClient:    st.QueuedByClient,
		RunningByClient:   st.RunningByClient,
		ClientQuota:       st.ClientQuota,
		ClientQueueDepth:  st.ClientQueueDepth,
		ClientOverloaded:  st.ClientOverloaded,
		ReconfigMs:        ms(st.ReconfigCost),
		Reconfigs:         st.Reconfigs,
		ReconfigTimeMs:    ms(st.ReconfigTime),
		CacheHits:         st.CacheHits, CacheMisses: st.CacheMisses,
		CacheHitRate:   st.CacheHitRate(),
		CacheEvictions: st.CacheEvictions, CacheEntries: st.CacheEntries,
		CacheBytes: st.CacheBytes, CacheMaxBytes: st.CacheMaxBytes,
		DeviceWaitMs: ms(st.DeviceWait), DeviceHoldMs: ms(st.DeviceHold),
		DeviceAcquires: st.DeviceAcquires, DeviceContended: st.DeviceContended,
		Incremental: st.Incremental, Fallbacks: st.Fallbacks,
		OutcomeHits: st.OutcomeHits, OutcomeMisses: st.OutcomeMisses,
		OutcomeEntries: st.OutcomeEntries, OutcomeBytes: st.OutcomeBytes,
		OutcomeDiskHits: st.OutcomeDiskHits, OutcomeLoaded: st.OutcomeLoaded,
		OutcomeErrors: st.OutcomeErrors,
	}
	if st.Fleet != nil {
		f := &fleetStatsResponse{
			Routed: st.Fleet.Routed, Retried: st.Fleet.Retried,
			Excluded:     st.Fleet.Excluded,
			RemoteWallMs: ms(st.Fleet.RemoteWall),
		}
		for _, n := range st.Fleet.Nodes {
			f.Nodes = append(f.Nodes, fleetNodeResponse{
				Addr: n.Addr, State: n.State,
				Routed: n.Routed, Failed: n.Failed, Inflight: n.Inflight,
			})
		}
		resp.Fleet = f
	}
	json.NewEncoder(w).Encode(resp)
}

// handleHealthz is the liveness probe. It answers 503 the moment drain()
// runs — before the listener closes — so orchestrators and coordinators
// see "draining" while in-flight work finishes instead of a 200 that
// flips straight to connection-refused.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
