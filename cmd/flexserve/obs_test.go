package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	flex "github.com/flex-eda/flex"
	"github.com/flex-eda/flex/internal/obs"
)

// newObsServer builds a flexserve with the full observability surface on:
// a metric registry wired through the service, tracing, and pprof.
func newObsServer(t *testing.T) (*httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	svc := flex.NewService(
		flex.WithWorkers(2), flex.WithCacheBytes(32<<20),
		flex.WithMetrics(reg), flex.WithTracing(true))
	ts := httptest.NewServer(newServerWith(svc, nil, 8<<20, 0.05, 8, obsConfig{
		metrics: reg, trace: true, pprof: true,
	}))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts, reg
}

// sample is one parsed exposition line: a metric name, its sorted label
// signature, and the value.
type sample struct {
	name   string
	labels string
	value  float64
}

// parsePrometheus is a strict test-local parser for the text exposition
// format version 0.0.4: it checks HELP/TYPE structure and returns every
// sample line. Unparseable lines fail the test — the scrape contract is
// that a vanilla Prometheus server can ingest /metrics verbatim.
func parsePrometheus(t *testing.T, body string) []sample {
	t.Helper()
	var samples []sample
	typed := map[string]string{}
	lineRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Fatalf("malformed comment line %q", line)
			}
			if f[1] == "TYPE" {
				typed[f[2]] = f[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := lineRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		labels := strings.Split(m[3], ",")
		sort.Strings(labels)
		samples = append(samples, sample{name: m[1], labels: strings.Join(labels, ","), value: v})
	}
	if len(typed) == 0 {
		t.Fatalf("no TYPE comments in exposition:\n%s", body)
	}
	return samples
}

// scrape fetches /metrics and parses it, checking the content type.
func scrape(t *testing.T, ts *httptest.Server) []sample {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("scrape: content type %q, want text exposition 0.0.4", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	return parsePrometheus(t, string(b))
}

// postJobs submits n design jobs and consumes the NDJSON stream, returning
// the result lines.
func postJobs(t *testing.T, ts *httptest.Server, n int) []resultLine {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(`{"jobs":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"design":"fft_a_md2","scale":0.01,"tag":"j%d"}`, i)
	}
	sb.WriteString(`]}`)
	resp, err := http.Post(ts.URL+"/v1/legalize", "application/json", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("post: status %d: %s", resp.StatusCode, b)
	}
	lines, sum := decodeNDJSON(t, bufio.NewScanner(resp.Body))
	if !sum.Done {
		t.Fatalf("stream ended without a done summary")
	}
	return lines
}

// TestMetricsScrapeUnderTraffic is the exposition-contract test: scrape
// /metrics repeatedly while concurrent legalize traffic runs (the -race
// build makes this a data-race probe too), and assert on every scrape that
// histogram bucket counts are monotone in le and consistent with +Inf and
// _count, and across scrapes that counters never go backwards.
func TestMetricsScrapeUnderTraffic(t *testing.T) {
	ts, _ := newObsServer(t)

	const clients, rounds, scrapes = 3, 3, 6
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				postJobs(t, ts, 2)
			}
		}()
	}
	prevCounters := map[string]float64{}
	counterNames := map[string]bool{
		"flex_serve_jobs_total":               true,
		"flex_serve_rejects_total":            true,
		"flex_device_reconfigs_total":         true,
		"flex_cache_layout_hits_total":        true,
		"flex_cache_layout_misses_total":      true,
		"flex_sched_queue_wait_seconds":       false, // histograms checked separately
		"flex_serve_sharded_jobs_total":       true,
		"flex_serve_queue_depth_jobs":         false,
		"flex_serve_draining_state":           false,
		"flex_serve_build_info":               false,
		"flex_device_wait_seconds_count":      true,
		"flex_device_hold_seconds_count":      true,
		"flex_serve_job_seconds_count":        true,
		"flex_sched_queue_wait_seconds_count": true,
	}
	for i := 0; i < scrapes; i++ {
		samples := scrape(t, ts)
		checkHistograms(t, samples)
		for _, s := range samples {
			if !counterNames[s.name] {
				continue
			}
			key := s.name + "{" + s.labels + "}"
			if prev, ok := prevCounters[key]; ok && s.value < prev {
				t.Fatalf("counter %s went backwards: %v -> %v", key, prev, s.value)
			}
			prevCounters[key] = s.value
		}
		if i == scrapes/2 {
			// Let some traffic land between the early and late scrapes.
			postJobs(t, ts, 1)
		}
	}
	wg.Wait()

	// After all traffic, the end-to-end histogram must have observed the
	// jobs and the queue-wait histogram must exist alongside it.
	final := scrape(t, ts)
	var jobCount float64
	seen := map[string]bool{}
	for _, s := range final {
		seen[s.name] = true
		if s.name == "flex_serve_job_seconds_count" {
			jobCount += s.value
		}
	}
	if jobCount < float64(clients*rounds*2) {
		t.Fatalf("flex_serve_job_seconds_count = %v, want >= %d", jobCount, clients*rounds*2)
	}
	for _, want := range []string{
		"flex_sched_queue_wait_seconds_bucket",
		"flex_device_wait_seconds_bucket",
		"flex_device_hold_seconds_bucket",
		"flex_serve_job_seconds_bucket",
		"flex_serve_jobs_total",
		"flex_serve_queue_depth_jobs",
		"flex_serve_build_info",
	} {
		if !seen[want] {
			t.Fatalf("metric family %s missing from final scrape", want)
		}
	}
}

// checkHistograms asserts, within one scrape, that every *_bucket series is
// monotone non-decreasing in le, that the +Inf bucket equals _count, and
// that _sum is present.
func checkHistograms(t *testing.T, samples []sample) {
	t.Helper()
	type bucket struct {
		le    float64
		count float64
	}
	buckets := map[string][]bucket{}
	counts := map[string]float64{}
	sums := map[string]bool{}
	for _, s := range samples {
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			base := strings.TrimSuffix(s.name, "_bucket")
			var le float64
			rest := make([]string, 0, 4)
			for _, l := range strings.Split(s.labels, ",") {
				if v, ok := strings.CutPrefix(l, `le="`); ok {
					v = strings.TrimSuffix(v, `"`)
					if v == "+Inf" {
						le = 1e308
					} else {
						f, err := strconv.ParseFloat(v, 64)
						if err != nil {
							t.Fatalf("bad le in %s{%s}: %v", s.name, s.labels, err)
						}
						le = f
					}
					continue
				}
				rest = append(rest, l)
			}
			key := base + "{" + strings.Join(rest, ",") + "}"
			buckets[key] = append(buckets[key], bucket{le: le, count: s.value})
		case strings.HasSuffix(s.name, "_count"):
			counts[strings.TrimSuffix(s.name, "_count")+"{"+s.labels+"}"] = s.value
		case strings.HasSuffix(s.name, "_sum"):
			sums[strings.TrimSuffix(s.name, "_sum")+"{"+s.labels+"}"] = true
		}
	}
	for key, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		for i := 1; i < len(bs); i++ {
			if bs[i].count < bs[i-1].count {
				t.Fatalf("%s: bucket counts not monotone: le=%v has %v < %v",
					key, bs[i].le, bs[i].count, bs[i-1].count)
			}
		}
		inf := bs[len(bs)-1]
		if inf.le < 1e308 {
			t.Fatalf("%s: no +Inf bucket", key)
		}
		if c, ok := counts[key]; !ok || c != inf.count {
			t.Fatalf("%s: +Inf bucket %v != _count %v", key, inf.count, c)
		}
		if !sums[key] {
			t.Fatalf("%s: missing _sum", key)
		}
	}
	if len(buckets) == 0 {
		t.Fatalf("no histogram buckets in scrape")
	}
}

// TestResultLinesCarryTraceIDs asserts that with tracing on every result
// line reports a 16-hex trace ID, and that without it the field is absent
// from the wire format entirely.
func TestResultLinesCarryTraceIDs(t *testing.T) {
	ts, _ := newObsServer(t)
	idRe := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for _, line := range postJobs(t, ts, 3) {
		if !idRe.MatchString(line.Trace) {
			t.Fatalf("result line %d: trace %q, want 16 hex digits", line.Index, line.Trace)
		}
	}

	// Tracing off: the JSON must not even contain the key (omitempty), so
	// observability off is byte-identical to the pre-tracing wire format.
	plain := newTestServer(t)
	resp, err := http.Post(plain.URL+"/v1/legalize", "application/json",
		strings.NewReader(`{"jobs":[{"design":"fft_a_md2","scale":0.01}]}`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(raw), `"trace"`) {
		t.Fatalf("tracing off but response contains a trace field:\n%s", raw)
	}
}

// TestBuildInfoEndpoint asserts /v1/buildinfo serves the build identity
// and is mounted even without a metric registry.
func TestBuildInfoEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/buildinfo")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	// Revision/time are omitted when the binary was built without VCS
	// stamping (as in `go test`), so only the always-present keys are
	// asserted here.
	for _, key := range []string{`"module"`, `"version"`, `"go"`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("buildinfo missing %s:\n%s", key, b)
		}
	}
}

// TestObsEndpointGating asserts that /metrics and /debug/pprof/* are 404
// on a server built without them and live on one built with them.
func TestObsEndpointGating(t *testing.T) {
	plain := newTestServer(t)
	for _, path := range []string{"/metrics", "/debug/pprof/"} {
		resp, err := http.Get(plain.URL + path)
		if err != nil {
			t.Fatalf("get %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s on plain server: status %d, want 404", path, resp.StatusCode)
		}
	}
	obsTS, _ := newObsServer(t)
	for _, path := range []string{"/metrics", "/debug/pprof/", "/debug/pprof/goroutine?debug=1"} {
		resp, err := http.Get(obsTS.URL + path)
		if err != nil {
			t.Fatalf("get %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s on obs server: status %d, want 200", path, resp.StatusCode)
		}
	}
}
