package flex_test

import (
	"context"
	"regexp"
	"strings"
	"testing"

	"github.com/flex-eda/flex"
)

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{16}$`)

// walkSpans visits every span in a tree, depth-first.
func walkSpans(spans []*flex.TraceSpan, f func(*flex.TraceSpan)) {
	for _, sp := range spans {
		f(sp)
		walkSpans(sp.Spans, f)
	}
}

// TestSubmitTracingLocalSpans asserts a traced single-process job yields a
// trace ID and a span tree with the scheduling and execution phases.
func TestSubmitTracingLocalSpans(t *testing.T) {
	svc := flex.NewService(flex.WithWorkers(2), flex.WithFPGAs(1), flex.WithTracing(true))
	defer svc.Close()
	sum, err := svc.Submit(context.Background(),
		[]flex.BatchJob{{Design: "fft_a_md2", Scale: 0.02, Tag: "local"}},
		flex.SubmitOptions{})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	r := sum.Results[0]
	if r.Err != nil {
		t.Fatalf("job failed: %v", r.Err)
	}
	if !traceIDRe.MatchString(r.TraceID) {
		t.Fatalf("trace ID %q, want 16 hex digits", r.TraceID)
	}
	seen := map[string]bool{}
	walkSpans(r.Spans, func(sp *flex.TraceSpan) { seen[sp.Name] = true })
	for _, want := range []string{"admit", "sched-wait", "legalize", "device-hold"} {
		if !seen[want] {
			t.Fatalf("span %q missing from local trace; saw %v", want, seen)
		}
	}
}

// TestTracingByteIdentity is the hard invariant behind the whole
// observability layer: the same job with tracing on and off produces
// byte-identical layouts and identical modeled seconds — only the
// telemetry fields differ.
func TestTracingByteIdentity(t *testing.T) {
	run := func(traceOn bool) flex.BatchResult {
		t.Helper()
		svc := flex.NewService(flex.WithWorkers(2), flex.WithFPGAs(1),
			flex.WithTracing(traceOn))
		defer svc.Close()
		sum, err := svc.Submit(context.Background(),
			[]flex.BatchJob{{Design: "fft_a_md2", Scale: 0.02, Shards: 4}},
			flex.SubmitOptions{})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		return sum.Results[0]
	}
	on, off := run(true), run(false)
	requireSameOutcome(t, "tracing on vs off", on, off)
	if off.TraceID != "" || off.Spans != nil {
		t.Fatalf("tracing off but result carries trace %q / %d spans", off.TraceID, len(off.Spans))
	}
	if on.TraceID == "" || len(on.Spans) == 0 {
		t.Fatalf("tracing on but result carries no trace")
	}
}

// TestFleetShardedJobTraceTree is the fleet acceptance check: a sharded
// job on a two-worker coordinator must produce ONE trace tree in which
// every band span carries its fleet RPC and the grafted worker-side
// subtree, with bands covering both workers. Band→worker assignment is
// consistent hashing on the band cache key, so the test probes a few
// scales until the split covers both nodes (each scale re-rolls every
// band's key; a single scale landing all bands on one node is already
// unlikely).
func TestFleetShardedJobTraceTree(t *testing.T) {
	srvA, _, _ := startWorker(t)
	srvB, _, _ := startWorker(t)
	wantNodes := map[string]bool{
		strings.TrimRight(srvA.URL, "/"): true,
		strings.TrimRight(srvB.URL, "/"): true,
	}
	for _, scale := range []float64{0.02, 0.021, 0.022, 0.023, 0.024, 0.025, 0.026, 0.027} {
		coord := flex.NewService(flex.WithWorkers(4), flex.WithCacheBytes(64<<20),
			flex.WithWorkersList(srvA.URL, srvB.URL), flex.WithTracing(true))
		sum, err := coord.Submit(context.Background(),
			[]flex.BatchJob{{Design: "fft_a_md2", Scale: scale, Shards: 6, Tag: "sharded"}},
			flex.SubmitOptions{})
		coord.Close()
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		r := sum.Results[0]
		if r.Err != nil {
			t.Fatalf("sharded fleet job failed: %v", r.Err)
		}
		if !traceIDRe.MatchString(r.TraceID) {
			t.Fatalf("trace ID %q, want 16 hex digits", r.TraceID)
		}

		var bands, stitches int
		nodes := map[string]bool{}
		walkSpans(r.Spans, func(sp *flex.TraceSpan) {
			if sp.Name == "stitch" {
				stitches++
			}
			if !strings.HasPrefix(sp.Name, "band ") {
				return
			}
			bands++
			// Each band executed remotely: its children must include the
			// RPC record and the worker's grafted subtree (the legalize
			// span the worker recorded on its side of the wire).
			var rpc, remote bool
			for _, child := range sp.Spans {
				switch child.Name {
				case "fleet-rpc":
					rpc = true
					nodes[strings.TrimRight(child.Detail, "/")] = true
				case "legalize":
					remote = true
				}
			}
			if !rpc {
				t.Fatalf("band span %q has no fleet-rpc child", sp.Name)
			}
			if !remote {
				t.Fatalf("band span %q has no grafted worker-side legalize span", sp.Name)
			}
		})
		if bands != 6 {
			t.Fatalf("got %d band spans, want 6", bands)
		}
		if stitches != 1 {
			t.Fatalf("got %d stitch spans, want 1", stitches)
		}
		for n := range nodes {
			if !wantNodes[n] {
				t.Fatalf("fleet-rpc span names unknown node %q (workers: %v)", n, wantNodes)
			}
		}
		if len(nodes) == len(wantNodes) {
			return // one tree, both workers covered
		}
	}
	t.Fatalf("no probed scale routed bands to both workers")
}
