# Mirrors .github/workflows/ci.yml so local and CI invocations stay identical.

GO ?= go

.PHONY: all build vet fmt-check doccheck flexvet lint test fuzz race bench bench-record benchdiff ci

# The canonical perf-trajectory recording command (docs/BENCHMARKING.md).
# -workers 1 keeps reconfiguration counts deterministic so the file is
# byte-stable across runs.
BENCH_RECORD_FLAGS = -exp bench -scale 0.01 -workers 1 -fpgas 1 -cache-mb 64 \
	-shards 4 -shard-halo 2 -sched-jobs 4

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

doccheck:
	$(GO) run ./cmd/doccheck

# The repo's own analyzers (docs/ANALYSIS.md): determinism, device-token,
# and output-discipline invariants, machine-enforced.
flexvet:
	$(GO) run ./cmd/flexvet ./...

lint: vet fmt-check doccheck flexvet

# -shuffle=on randomizes test order so accidental inter-test coupling
# fails loudly instead of passing by luck.
test: fuzz
	$(GO) test -shuffle=on ./...

# Native fuzz smoke: each target explores for 10s on top of its committed
# seed corpus (testdata/fuzz/<FuzzName>/); any finding fails the build.
# go test allows one -fuzz pattern per invocation, hence one line per target.
fuzz:
	$(GO) test ./internal/model -run=NONE -fuzz=FuzzFlexplRoundTrip -fuzztime=10s
	$(GO) test ./internal/shard -run=NONE -fuzz=FuzzSplitStitch -fuzztime=10s

race:
	$(GO) test -shuffle=on -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Record a fresh trajectory point (stdout tables discarded; stderr kept).
bench-record:
	$(GO) run ./cmd/flexbench $(BENCH_RECORD_FLAGS) -bench-out BENCH_new.json > /dev/null

# Gate BENCH_new.json against the newest committed trajectory point.
benchdiff: bench-record
	$(GO) run ./cmd/benchdiff -op-tol 0 \
		$$(ls BENCH_[0-9]*.json | sort -t_ -k2 -n | tail -1) BENCH_new.json

ci: build lint race fuzz bench benchdiff
