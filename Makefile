# Mirrors .github/workflows/ci.yml so local and CI invocations stay identical.

GO ?= go

.PHONY: all build vet fmt-check doccheck lint test race bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

doccheck:
	$(GO) run ./cmd/doccheck

lint: vet fmt-check doccheck

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

ci: build lint race bench
