module github.com/flex-eda/flex

go 1.22
