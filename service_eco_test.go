package flex_test

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	flex "github.com/flex-eda/flex"
)

// submitOne runs one job on svc and returns its outcome, failing the test
// on any error.
func submitOne(t *testing.T, svc *flex.Service, job flex.BatchJob) *flex.Outcome {
	t.Helper()
	sum, err := svc.Submit(context.Background(), []flex.BatchJob{job}, flex.SubmitOptions{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	r := sum.Results[0]
	if r.Err != nil {
		t.Fatalf("job failed: %v", r.Err)
	}
	return r.Outcome
}

// inHaloEdits builds a deterministic batch of n cell moves that each stay
// within maxDY rows of the cell's current band — the edits the incremental
// path must serve by splicing.
func inHaloEdits(t *testing.T, l *flex.Layout, n, maxDY int, rng *rand.Rand) []flex.Edit {
	t.Helper()
	var movable []int
	for i, c := range l.Cells {
		if !c.Fixed && c.Parity == 0 {
			movable = append(movable, i)
		}
	}
	if len(movable) == 0 {
		t.Fatal("layout has no movable cells")
	}
	edits := make([]flex.Edit, 0, n)
	used := make(map[string]bool)
	for len(edits) < n {
		c := l.Cells[movable[rng.Intn(len(movable))]]
		if used[c.Name] {
			continue
		}
		gy := c.GY + rng.Intn(2*maxDY+1) - maxDY
		if gy < 0 || gy+c.H > l.NumRows {
			continue
		}
		gx := rng.Intn(l.NumSitesX - c.W + 1)
		used[c.Name] = true
		edits = append(edits, flex.Edit{Op: flex.EditMove, Cell: c.Name, GX: gx, GY: gy})
	}
	return edits
}

// TestIncrementalByteIdenticalToFullRun is the tentpole property test: for
// randomized in-halo edit batches, the incremental result (cached base,
// spliced clean bands) must be byte-identical to a full re-run of the
// edited layout, across worker and board configurations, cold and warm.
// Out-of-halo edits must take the fallback path — observed via the
// Fallbacks stat — and still match.
func TestIncrementalByteIdenticalToFullRun(t *testing.T) {
	base, err := flex.GenerateCustom(600, 0.6, 33)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 4
	for _, workers := range []int{1, 4} {
		for _, fpgas := range []int{1, 2} {
			rng := rand.New(rand.NewSource(7))
			edits := inHaloEdits(t, base, 5, 2, rng)

			// Reference: a cacheless service legalizes the edited layout in
			// full (this also exercises edits without an outcome cache).
			ref := flex.NewService(flex.WithWorkers(workers), flex.WithFPGAs(fpgas), flex.WithShards(shards))
			refOut := submitOne(t, ref, flex.BatchJob{Layout: base, Edits: edits, Engine: flex.EngineFLEX})
			ref.Close()
			want := encodeLayout(t, refOut.Layout)
			if refOut.InputHash != "" {
				t.Fatalf("workers=%d fpgas=%d: cacheless outcome reports InputHash %q", workers, fpgas, refOut.InputHash)
			}

			svc := flex.NewService(flex.WithWorkers(workers), flex.WithFPGAs(fpgas),
				flex.WithShards(shards), flex.WithOutcomeCacheBytes(64<<20))

			// Cold cache: the eco job cannot splice (base outcome unknown)
			// and must fall back to a full run that still matches.
			coldOut := submitOne(t, svc, flex.BatchJob{Layout: base, Edits: edits, Engine: flex.EngineFLEX})
			if got := encodeLayout(t, coldOut.Layout); !bytes.Equal(want, got) {
				t.Fatalf("workers=%d fpgas=%d: cold eco result differs from full re-run", workers, fpgas)
			}
			if st := svc.Stats(); st.Fallbacks != 1 || st.Incremental != 0 {
				t.Fatalf("workers=%d fpgas=%d: cold stats fallbacks=%d incremental=%d, want 1/0",
					workers, fpgas, st.Fallbacks, st.Incremental)
			}

			// Legalize the base so its outcome is cached, then edit against
			// it by content hash: the incremental path must splice.
			baseOut := submitOne(t, svc, flex.BatchJob{Layout: base, Engine: flex.EngineFLEX})
			if baseOut.InputHash != flex.LayoutHash(base) {
				t.Fatalf("workers=%d fpgas=%d: base InputHash %q, want %q",
					workers, fpgas, baseOut.InputHash, flex.LayoutHash(base))
			}
			incOut := submitOne(t, svc, flex.BatchJob{BaseHash: baseOut.InputHash, Edits: edits, Engine: flex.EngineFLEX})
			if got := encodeLayout(t, incOut.Layout); !bytes.Equal(want, got) {
				t.Fatalf("workers=%d fpgas=%d: incremental result differs from full re-run", workers, fpgas)
			}
			if st := svc.Stats(); st.Incremental != 1 {
				t.Fatalf("workers=%d fpgas=%d: incremental=%d after in-halo edit, want 1", workers, fpgas, st.Incremental)
			}
			if incOut.Legal != refOut.Legal || incOut.Metrics != refOut.Metrics ||
				incOut.ModeledSeconds != refOut.ModeledSeconds {
				t.Fatalf("workers=%d fpgas=%d: incremental outcome fields differ from full re-run", workers, fpgas)
			}

			// Warm repeat: the identical request is an exact outcome hit.
			before := svc.Stats().OutcomeHits
			warmOut := submitOne(t, svc, flex.BatchJob{BaseHash: baseOut.InputHash, Edits: edits, Engine: flex.EngineFLEX})
			if got := encodeLayout(t, warmOut.Layout); !bytes.Equal(want, got) {
				t.Fatalf("workers=%d fpgas=%d: warm repeat differs from full re-run", workers, fpgas)
			}
			if st := svc.Stats(); st.OutcomeHits <= before {
				t.Fatalf("workers=%d fpgas=%d: warm repeat did not hit the outcome cache", workers, fpgas)
			}

			// Out-of-halo edit: must fall back (stat-asserted) and match its
			// own full re-run.
			far := farEdit(t, base)
			ref2 := flex.NewService(flex.WithWorkers(workers), flex.WithFPGAs(fpgas), flex.WithShards(shards))
			farWant := encodeLayout(t, submitOne(t, ref2, flex.BatchJob{Layout: base, Edits: far, Engine: flex.EngineFLEX}).Layout)
			ref2.Close()
			fb := svc.Stats().Fallbacks
			farOut := submitOne(t, svc, flex.BatchJob{BaseHash: baseOut.InputHash, Edits: far, Engine: flex.EngineFLEX})
			if got := encodeLayout(t, farOut.Layout); !bytes.Equal(farWant, got) {
				t.Fatalf("workers=%d fpgas=%d: out-of-halo result differs from full re-run", workers, fpgas)
			}
			if st := svc.Stats(); st.Fallbacks != fb+1 {
				t.Fatalf("workers=%d fpgas=%d: out-of-halo edit did not take the fallback path (fallbacks %d -> %d)",
					workers, fpgas, fb, st.Fallbacks)
			}
			svc.Close()
		}
	}
}

// farEdit builds one move that ripples far past any halo: the first
// movable cell jumps half the die away.
func farEdit(t *testing.T, l *flex.Layout) []flex.Edit {
	t.Helper()
	for _, c := range l.Cells {
		if c.Fixed || c.Parity != 0 {
			continue
		}
		gy := c.GY + l.NumRows/2
		if gy+c.H > l.NumRows {
			gy = c.GY - l.NumRows/2
		}
		if gy < 0 || gy+c.H > l.NumRows {
			continue
		}
		return []flex.Edit{{Op: flex.EditMove, Cell: c.Name, GX: c.GX, GY: gy}}
	}
	t.Fatal("no cell admits an out-of-halo move")
	return nil
}

// TestBaseHashRequiresOutcomeCache: naming a base by hash on a service
// without an outcome cache must fail the job, not silently full-run.
func TestBaseHashRequiresOutcomeCache(t *testing.T) {
	svc := flex.NewService(flex.WithWorkers(1))
	defer svc.Close()
	sum, err := svc.Submit(context.Background(),
		[]flex.BatchJob{{BaseHash: "deadbeef", Engine: flex.EngineFLEX}}, flex.SubmitOptions{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if sum.Results[0].Err == nil {
		t.Fatal("BaseHash without an outcome cache should fail the job")
	}
}

// TestUnknownBaseHashFailsJob: an outcome-cache service must reject a base
// hash it has never seen rather than guess.
func TestUnknownBaseHashFailsJob(t *testing.T) {
	svc := flex.NewService(flex.WithWorkers(1), flex.WithOutcomeCacheBytes(1<<20))
	defer svc.Close()
	sum, err := svc.Submit(context.Background(),
		[]flex.BatchJob{{BaseHash: "deadbeef", Engine: flex.EngineFLEX}}, flex.SubmitOptions{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if sum.Results[0].Err == nil {
		t.Fatal("unknown base hash should fail the job")
	}
}

// TestPlainOutcomeCacheServesRepeats: on the unsharded path a repeated
// explicit-layout job is served from the outcome cache — byte-identical,
// with the hit counted.
func TestPlainOutcomeCacheServesRepeats(t *testing.T) {
	l, err := flex.GenerateCustom(400, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	svc := flex.NewService(flex.WithWorkers(2), flex.WithOutcomeCacheBytes(32<<20))
	defer svc.Close()
	first := submitOne(t, svc, flex.BatchJob{Layout: l, Engine: flex.EngineFLEX})
	if first.InputHash != flex.LayoutHash(l) {
		t.Fatalf("InputHash %q, want %q", first.InputHash, flex.LayoutHash(l))
	}
	second := submitOne(t, svc, flex.BatchJob{Layout: l, Engine: flex.EngineFLEX})
	if !bytes.Equal(encodeLayout(t, first.Layout), encodeLayout(t, second.Layout)) {
		t.Fatal("cached repeat differs from first run")
	}
	st := svc.Stats()
	if st.OutcomeHits != 1 || st.OutcomeMisses != 1 {
		t.Fatalf("outcome hits/misses = %d/%d, want 1/1", st.OutcomeHits, st.OutcomeMisses)
	}
	// The cached layout must be cloned per serve: mutating one result must
	// not corrupt the cache.
	second.Layout.Cells[0].X++
	third := submitOne(t, svc, flex.BatchJob{Layout: l, Engine: flex.EngineFLEX})
	if !bytes.Equal(encodeLayout(t, first.Layout), encodeLayout(t, third.Layout)) {
		t.Fatal("mutating a served result corrupted the cache")
	}
}
