package flex

import (
	"context"
	"testing"

	"github.com/flex-eda/flex/internal/batch"
)

// TestFoldIgnoresSkippedPaddingSlots: when a requested shard count exceeds
// what the die holds, the padding slots beyond the clamped plan may be
// canceled (ErrSkipped) while every real band already finished — the fold
// must still deliver the stitched result instead of reporting the whole
// job skipped, and OnShard must never surface a padding slot.
func TestFoldIgnoresSkippedPaddingSlots(t *testing.T) {
	svc := NewService(WithWorkers(1))
	defer svc.Close()
	l, err := GenerateCustom(80, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	const requested = 40
	e := svc.expand([]BatchJob{{Layout: l, Engine: EngineMGL, Shards: requested}})
	if len(e.pool) != requested {
		t.Fatalf("expanded into %d pool jobs, want %d", len(e.pool), requested)
	}
	p, err := e.states[0].prep()
	if err != nil {
		t.Fatal(err)
	}
	eff := len(p.plan.Bands)
	if eff >= requested || eff < 1 {
		t.Fatalf("effective bands = %d, want clamped below %d", eff, requested)
	}

	var folded []BatchResult
	shardCalls := 0
	col := newShardCollector(e,
		func(job int, r BatchResult) { shardCalls++ },
		func(br BatchResult) { folded = append(folded, br) })
	// Real bands completed before the batch was canceled; the padding
	// slots were skipped by the cancellation.
	for i := 0; i < requested; i++ {
		r := batch.Result[*Outcome]{Index: i}
		if i < eff {
			out, err := e.jobs[0].legalizeOnDevice(context.Background(), p.bands[i])
			if err != nil {
				t.Fatalf("band %d: %v", i, err)
			}
			r.Value = out
		} else {
			r.Err = batch.ErrSkipped
		}
		col.observe(r)
	}

	if len(folded) != 1 {
		t.Fatalf("folded %d results, want 1", len(folded))
	}
	br := folded[0]
	if br.Err != nil {
		t.Fatalf("finished bands reported as failed/skipped: %v", br.Err)
	}
	if br.Outcome == nil || !br.Outcome.Legal {
		t.Fatalf("no stitched outcome: %+v", br)
	}
	if len(br.Shards) != eff {
		t.Fatalf("result carries %d shard entries, want %d real bands", len(br.Shards), eff)
	}
	if shardCalls != eff {
		t.Fatalf("OnShard fired %d times, want %d (padding slots must not surface)", shardCalls, eff)
	}
}

// TestAutoShardCap: size-triggered sharding never derives more than
// maxAutoShards bands, however extreme the footprint/threshold ratio.
func TestAutoShardCap(t *testing.T) {
	svc := NewService(WithWorkers(1), WithAutoShardBytes(1))
	defer svc.Close()
	if k := svc.effectiveShards(BatchJob{Design: "superblue19", Scale: 1.0}); k != maxAutoShards {
		t.Fatalf("auto shard count = %d, want capped at %d", k, maxAutoShards)
	}
	// An explicit request is the caller's own expansion and stays uncapped.
	if k := svc.effectiveShards(BatchJob{Design: "superblue19", Scale: 1.0, Shards: 100}); k != 100 {
		t.Fatalf("explicit shard count = %d, want 100", k)
	}
}
