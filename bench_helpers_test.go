package flex_test

import (
	"testing"

	flex "github.com/flex-eda/flex"
)

func genLayout() (*flex.Layout, error) {
	return flex.GenerateCustom(600, 0.6, 33)
}

func mustLegal(b *testing.B, legal bool) {
	b.Helper()
	if !legal {
		b.Fatal("engine produced an illegal layout")
	}
}

func legalizeFLEX(l *flex.Layout) bool {
	out, err := flex.Legalize(l, flex.EngineFLEX)
	return err == nil && out.Legal
}

func legalizeMGL(l *flex.Layout, threads int) bool {
	e := flex.EngineMGL
	if threads > 1 {
		e = flex.EngineMGLMT
	}
	out, err := flex.LegalizeWith(l, e, flex.Options{Threads: threads})
	return err == nil && out.Legal
}

func legalizeGPU(l *flex.Layout) bool {
	out, err := flex.Legalize(l, flex.EngineGPU)
	return err == nil && out.Legal
}

func legalizeAnalytical(l *flex.Layout) bool {
	out, err := flex.Legalize(l, flex.EngineAnalytical)
	return err == nil && out.Legal
}
