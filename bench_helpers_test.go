package flex_test

import (
	"bytes"
	"testing"

	flex "github.com/flex-eda/flex"
)

// genLayout builds the benchmarks' input through the canonical flexpl
// round trip, so they measure exactly the bytes the serving path hashes
// and caches (a generated layout and its canonical form are identical;
// this keeps that equivalence load-bearing).
func genLayout() (*flex.Layout, error) {
	l, err := flex.GenerateCustom(600, 0.6, 33)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := flex.WriteLayout(&buf, l); err != nil {
		return nil, err
	}
	return flex.ReadLayout(&buf)
}

func mustLegal(b *testing.B, legal bool) {
	b.Helper()
	if !legal {
		b.Fatal("engine produced an illegal layout")
	}
}

func legalizeFLEX(l *flex.Layout) bool {
	out, err := flex.Legalize(l, flex.EngineFLEX)
	return err == nil && out.Legal
}

func legalizeMGL(l *flex.Layout, threads int) bool {
	e := flex.EngineMGL
	if threads > 1 {
		e = flex.EngineMGLMT
	}
	out, err := flex.LegalizeWith(l, e, flex.Options{Threads: threads})
	return err == nil && out.Legal
}

func legalizeGPU(l *flex.Layout) bool {
	out, err := flex.Legalize(l, flex.EngineGPU)
	return err == nil && out.Legal
}

func legalizeAnalytical(l *flex.Layout) bool {
	out, err := flex.Legalize(l, flex.EngineAnalytical)
	return err == nil && out.Legal
}
